package compiler

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/workloads"
)

// storeLoop builds a program with one loop containing stores per
// iteration, the canonical region-formation input.
func storeLoop(storesPerIter, iters int64) *ir.Program {
	p := ir.NewProgram("t")
	f := p.NewFunc("main")
	arr := p.Alloc(4096)
	en := f.Entry()
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	en.MovI(0, 0)
	en.MovI(1, iters)
	en.Jmp(head)
	head.Bge(0, 1, exit, body)
	body.MovI(2, arr)
	for i := int64(0); i < storesPerIter; i++ {
		body.St(2, i*8, 0)
	}
	body.AddI(0, 0, 1)
	body.Jmp(head)
	exit.Halt()
	return p
}

func countOps(l *ir.Linked, op isa.Op) int {
	n := 0
	for _, in := range l.Code {
		if in.Op == op {
			n++
		}
	}
	return n
}

func TestPlainModeUntouched(t *testing.T) {
	p := storeLoop(3, 10)
	before := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			before += len(b.Instrs)
		}
	}
	res, err := Compile(p, Options{Mode: ModePlain})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []isa.Op{isa.OpRegionEnd, isa.OpSavePC, isa.OpCkptSt, isa.OpClwb, isa.OpFence} {
		if countOps(res.Linked, op) != 0 {
			t.Errorf("plain mode emitted %v", op)
		}
	}
}

func TestSweepModeBoundaryShape(t *testing.T) {
	p := storeLoop(3, 10)
	res, err := Compile(p, Options{Mode: ModeSweep, StoreThreshold: 64, UnrollCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	l := res.Linked
	nEnd := countOps(l, isa.OpRegionEnd)
	nSave := countOps(l, isa.OpSavePC)
	if nEnd == 0 || nEnd != nSave {
		t.Fatalf("region.end=%d save.pc=%d", nEnd, nSave)
	}
	// Every save.pc is immediately followed by its region.end, and its
	// immediate points right past it.
	for pc, in := range l.Code {
		if in.Op == isa.OpSavePC {
			if l.Code[pc+1].Op != isa.OpRegionEnd {
				t.Errorf("save.pc at %d not followed by region.end", pc)
			}
			if in.Imm != int64(pc+2) {
				t.Errorf("save.pc imm = %d at pc %d", in.Imm, pc)
			}
		}
	}
	// The loop counter r0 is live around the loop: it must be
	// checkpointed somewhere.
	if countOps(l, isa.OpCkptSt) == 0 {
		t.Error("no checkpoint stores inserted")
	}
}

func TestReplayModeLowering(t *testing.T) {
	p := storeLoop(3, 10)
	res, err := Compile(p, Options{Mode: ModeReplay, StoreThreshold: 64})
	if err != nil {
		t.Fatal(err)
	}
	l := res.Linked
	stores := countOps(l, isa.OpSt) + countOps(l, isa.OpStB)
	if got := countOps(l, isa.OpClwb); got != stores {
		t.Errorf("clwb=%d stores=%d", got, stores)
	}
	if countOps(l, isa.OpFence) == 0 {
		t.Error("no fences inserted")
	}
	if countOps(l, isa.OpCkptSt) != 0 || countOps(l, isa.OpRegionEnd) != 0 {
		t.Error("replay mode emitted sweep boundary code")
	}
}

// TestThresholdSplitting: a block with more stores than the threshold must
// be split so that no region exceeds it.
func TestThresholdSplitting(t *testing.T) {
	p := storeLoop(60, 4)
	res, err := Compile(p, Options{Mode: ModeSweep, StoreThreshold: 32, UnrollCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SplitBoundary == 0 {
		t.Fatal("no threshold splits for 60 stores with threshold 32")
	}
	for i, n := range res.Stats.MaxPathStores {
		if n > 32 {
			t.Errorf("region %d worst-case stores %d > threshold", i, n)
		}
	}
}

// TestTinyThresholdStillConverges: splitting distributes register
// definitions (and therefore checkpoint stores) across the sub-regions, so
// region formation converges even under heavy checkpoint pressure with a
// tiny threshold — and the bound must still hold.
func TestTinyThresholdStillConverges(t *testing.T) {
	p := ir.NewProgram("t")
	f := p.NewFunc("main")
	arr := p.Alloc(4096)
	en := f.Entry()
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	en.MovI(0, 0)
	en.MovI(1, 8)
	en.Jmp(head)
	head.Bge(0, 1, exit, body)
	body.MovI(13, arr)
	for r := isa.Reg(2); r <= 11; r++ {
		body.AddI(r, r, 1) // live across iterations
		body.St(13, int64(r)*8, r)
	}
	body.AddI(0, 0, 1)
	body.Jmp(head)
	exit.Halt()
	res, err := Compile(p, Options{Mode: ModeSweep, StoreThreshold: 6, UnrollCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range res.Stats.MaxPathStores {
		if n > 6 {
			t.Errorf("region %d worst-case stores %d > 6", i, n)
		}
	}
}

// TestMaxPathStoresBound is the compiler's central invariant on every
// workload: no region's worst-case store count may exceed the threshold.
func TestMaxPathStoresBound(t *testing.T) {
	for _, th := range []int{32, 64} {
		for _, w := range workloads.All() {
			res, err := Compile(w.Build(1), Options{Mode: ModeSweep, StoreThreshold: th})
			if err != nil {
				t.Fatalf("%s: %v", w.Name, err)
			}
			for i, n := range res.Stats.MaxPathStores {
				if n > th {
					t.Errorf("%s th=%d: region %d has %d worst-case stores", w.Name, th, i, n)
				}
			}
		}
	}
}

func TestUnrollingPreservesSemanticsShape(t *testing.T) {
	p := storeLoop(2, 10)
	res, err := Compile(p, Options{Mode: ModeSweep, StoreThreshold: 64, UnrollCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.UnrolledLoops != 1 {
		t.Fatalf("unrolled = %d", res.Stats.UnrolledLoops)
	}
	// After unrolling there must be exactly one loop header with a store
	// (one region boundary inside the loop).
	f := res.Linked.Prog.Funcs[0]
	loops := analysis.NaturalLoops(f)
	if len(loops) != 1 {
		t.Fatalf("loops after unroll = %d", len(loops))
	}
}

func TestUnrollSkipsLoopsWithCalls(t *testing.T) {
	p := ir.NewProgram("t")
	callee := p.NewFunc("leaf")
	p.SetEntry(nil)
	main := p.NewFunc("main")
	p.SetEntry(main)
	arr := p.Alloc(64)
	ce := callee.Entry()
	ce.MovI(3, arr)
	ce.St(3, 0, 0)
	ce.Ret()
	en := main.Entry()
	head := main.NewBlock("head")
	body := main.NewBlock("body")
	cont := main.NewBlock("cont")
	exit := main.NewBlock("exit")
	en.MovI(0, 0)
	en.MovI(1, 5)
	en.Jmp(head)
	head.Bge(0, 1, exit, body)
	body.Call(callee, cont)
	cont.AddI(0, 0, 1)
	cont.Jmp(head)
	exit.Halt()
	res, err := Compile(p, Options{Mode: ModeSweep, StoreThreshold: 64, UnrollCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.UnrolledLoops != 0 {
		t.Error("unrolled a loop containing a call")
	}
}

func TestFunctionEntryCheckpointsLR(t *testing.T) {
	p := ir.NewProgram("t")
	callee := p.NewFunc("leaf")
	p.SetEntry(nil)
	main := p.NewFunc("main")
	p.SetEntry(main)
	arr := p.Alloc(64)
	ce := callee.Entry()
	ce.MovI(3, arr)
	ce.St(3, 0, 0)
	ce.Ret()
	en := main.Entry()
	cont := main.NewBlock("cont")
	en.Call(callee, cont)
	cont.Halt()
	res, err := Compile(p, Options{Mode: ModeSweep, StoreThreshold: 64})
	if err != nil {
		t.Fatal(err)
	}
	// The callee entry block must begin [ckpt.st lr, save.pc, region.end].
	eb := callee.Entry()
	if eb.Instrs[0].Op != isa.OpCkptSt || eb.Instrs[0].Src2 != isa.LR {
		t.Fatalf("callee entry starts with %v", eb.Instrs[0])
	}
	if eb.Instrs[1].Op != isa.OpSavePC || eb.Instrs[2].Op != isa.OpRegionEnd {
		t.Fatalf("callee entry boundary shape: %v %v", eb.Instrs[1], eb.Instrs[2])
	}
	_ = res
}

func TestEHModelSplitsLongRegions(t *testing.T) {
	// One long straight-line block, no loop: without the EH check it is
	// a single region.
	p := ir.NewProgram("t")
	f := p.NewFunc("main")
	arr := p.Alloc(4096)
	en := f.Entry()
	en.MovI(2, arr)
	for i := 0; i < 200; i++ {
		en.AddI(3, 3, 1)
	}
	en.St(2, 0, 3)
	en.Halt()
	res, err := Compile(p, Options{
		Mode: ModeSweep, StoreThreshold: 64,
		MaxRegionEnergy: 50, EnergyPerInstr: 1, EnergyPerStore: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.EnergySplits == 0 {
		t.Error("EH model did not split a 200-instruction region with budget 50")
	}
	for _, n := range res.Stats.RegionSizeMax {
		if n > 120 {
			t.Errorf("region still too long: %d insts", n)
		}
	}
}

func TestCompileStatsPopulated(t *testing.T) {
	w, err := workloads.ByName("sha")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compile(w.Build(1), Options{Mode: ModeSweep})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Regions == 0 || st.CkptStores == 0 || st.StaticInstrs == 0 {
		t.Errorf("stats: %+v", st)
	}
	if len(st.MaxPathStores) != st.Regions || len(st.RegionSizeMax) != st.Regions {
		t.Error("per-region stats length mismatch")
	}
}

// TestInlining: the Section 5 pass must remove callsites, preserve
// semantics (identical linked-code behaviour is covered by the fuzz and
// core differential tests; here we check the structural contract), and
// never touch non-leaf or oversized callees.
func TestInlining(t *testing.T) {
	build := func() *ir.Program {
		p := ir.NewProgram("t")
		leaf := p.NewFunc("leaf")
		p.SetEntry(nil)
		main := p.NewFunc("main")
		p.SetEntry(main)
		arr := p.Alloc(256)
		le := leaf.Entry()
		le.MovI(3, arr)
		le.St(3, 0, 2)
		le.AddI(2, 2, 1)
		le.Ret()
		en := main.Entry()
		c1 := main.NewBlock("c1")
		c2 := main.NewBlock("c2")
		en.MovI(2, 5)
		en.Call(leaf, c1)
		c1.Call(leaf, c2)
		c2.MovI(3, arr)
		c2.St(3, 8, 2)
		c2.Halt()
		return p
	}

	plain, err := Compile(build(), Options{Mode: ModeSweep, UnrollCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	inlined, err := Compile(build(), Options{Mode: ModeSweep, UnrollCap: 1, InlineSmallFuncs: true})
	if err != nil {
		t.Fatal(err)
	}
	if inlined.Stats.InlinedCalls != 2 {
		t.Fatalf("inlined %d callsites, want 2", inlined.Stats.InlinedCalls)
	}
	if countOps(inlined.Linked, isa.OpCall) != 0 {
		t.Error("calls remain after inlining")
	}
	if countOps(plain.Linked, isa.OpCall) != 2 {
		t.Error("baseline lost its calls")
	}
	// Inlining removes the callee-entry + continuation boundaries.
	if inlined.Stats.Regions >= plain.Stats.Regions {
		t.Errorf("regions: inlined %d, plain %d", inlined.Stats.Regions, plain.Stats.Regions)
	}
}

// TestInliningSkipsNonLeaf: a callee that itself calls must stay a call.
func TestInliningSkipsNonLeaf(t *testing.T) {
	p := ir.NewProgram("t")
	inner := p.NewFunc("inner")
	outer := p.NewFunc("outer")
	p.SetEntry(nil)
	main := p.NewFunc("main")
	p.SetEntry(main)
	arr := p.Alloc(64)
	ie := inner.Entry()
	ie.MovI(3, arr)
	ie.St(3, 0, 2)
	ie.Ret()
	oe := outer.Entry()
	ocont := outer.NewBlock("cont")
	oe.Call(inner, ocont)
	ocont.Ret()
	en := main.Entry()
	cont := main.NewBlock("cont")
	en.Call(outer, cont)
	cont.Halt()
	res, err := Compile(p, Options{Mode: ModeSweep, InlineSmallFuncs: true})
	if err != nil {
		t.Fatal(err)
	}
	// Inlining cascades: once inner is inlined into outer, outer becomes
	// a small leaf and is inlined into main as well — the "aggressive
	// function inlining" the paper points at.
	if got := countOps(res.Linked, isa.OpCall); got != 0 {
		t.Errorf("calls after cascading inlining = %d, want 0", got)
	}
}

// TestInliningRespectsSizeBound: an oversized leaf stays a call.
func TestInliningRespectsSizeBound(t *testing.T) {
	p := ir.NewProgram("t")
	big := p.NewFunc("big")
	p.SetEntry(nil)
	main := p.NewFunc("main")
	p.SetEntry(main)
	be := big.Entry()
	for i := 0; i < 100; i++ {
		be.AddI(2, 2, 1)
	}
	be.Ret()
	en := main.Entry()
	cont := main.NewBlock("cont")
	en.Call(big, cont)
	cont.MovI(3, ir.DataBase)
	cont.St(3, 0, 2)
	cont.Halt()
	res, err := Compile(p, Options{Mode: ModeSweep, InlineSmallFuncs: true, InlineMaxInstrs: 48})
	if err != nil {
		t.Fatal(err)
	}
	if got := countOps(res.Linked, isa.OpCall); got != 1 {
		t.Errorf("oversized callee inlined (calls = %d)", got)
	}
}

// TestPeepholeRemovesDeadCode: a dead pure definition disappears; live
// ones survive; memory ops are never touched.
func TestPeepholeRemovesDeadCode(t *testing.T) {
	p := ir.NewProgram("t")
	f := p.NewFunc("main")
	arr := p.Alloc(64)
	en := f.Entry()
	en.MovI(1, 42)    // dead: overwritten below before any use
	en.MovI(1, 43)    // live: stored
	en.Mov(2, 2)      // self-move: dead
	en.MovI(3, arr)
	en.St(3, 0, 1)
	en.MovI(4, 9) // dead: never used, dead at halt
	en.Halt()
	res, err := Compile(p, Options{Mode: ModeSweep})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DeadRemoved != 3 {
		t.Errorf("dead removed = %d, want 3", res.Stats.DeadRemoved)
	}
	if got := countOps(res.Linked, isa.OpSt); got != 1 {
		t.Errorf("stores = %d", got)
	}
}

// TestPeepholeKeepsLoopCarriedDefs: a definition used only in the NEXT
// iteration (live around the back edge) must survive.
func TestPeepholeKeepsLoopCarriedDefs(t *testing.T) {
	p := storeLoop(2, 5)
	res, err := Compile(p, Options{Mode: ModeSweep, UnrollCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The loop counter's AddI is loop-carried; removing it would hang
	// the program. Run it to be sure.
	if res.Stats.DeadRemoved != 0 {
		t.Logf("removed %d (ok if genuinely dead)", res.Stats.DeadRemoved)
	}
	for _, in := range res.Linked.Code {
		_ = in
	}
}
