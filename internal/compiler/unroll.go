package compiler

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/isa"
)

// unrollLoops enlarges small-bodied loops so that the region formed at the
// loop header holds closer to the store threshold (Section 4.1, Figure 4).
// Unlike classic unrolling it needs no trip count: the whole loop body —
// including the header's exit test — is replicated, and each replica keeps
// every exit edge, so the transformation is semantics-preserving for any
// iteration count. Only the original header remains a loop header (all
// back edges funnel through the replica chain back to it), so region
// formation places one boundary per unrolled iteration group.
//
// Only innermost loops without calls are unrolled: a nested loop header or
// a call-continuation boundary inside the body would defeat the point.
// Returns the number of loops unrolled.
func unrollLoops(p *ir.Program, opt Options) int {
	eff := opt.StoreThreshold - 2
	if eff < 1 {
		eff = 1
	}
	n := 0
	for _, f := range p.Funcs {
		loops := analysis.NaturalLoops(f)
		for _, lp := range loops {
			if hasCall(lp) || !innermost(lp, loops) {
				continue
			}
			spi, instrs := loopWeight(lp)
			if instrs > opt.UnrollMaxBodyInstrs {
				continue
			}
			// Store-free loops still carry a header boundary (see
			// initialHeads), and only the boundary's own stores count
			// against the threshold — so they can be unrolled much
			// deeper to amortize the boundary.
			factor := 4 * opt.UnrollCap
			if spi > 0 {
				factor = eff / spi
				if factor > opt.UnrollCap {
					factor = opt.UnrollCap
				}
			} else if factor > eff {
				factor = eff
			}
			if factor < 2 {
				continue
			}
			unrollOne(f, lp, factor)
			n++
		}
	}
	return n
}

func hasCall(lp *analysis.Loop) bool {
	for b := range lp.Blocks {
		if b.Terminator().Op == isa.OpCall {
			return true
		}
	}
	return false
}

// innermost reports whether lp contains no other loop's header.
func innermost(lp *analysis.Loop, all []*analysis.Loop) bool {
	for _, o := range all {
		if o.Header != lp.Header && lp.Blocks[o.Header] {
			return false
		}
	}
	return true
}

// loopWeight returns (stores per iteration, instructions per iteration).
func loopWeight(lp *analysis.Loop) (int, int) {
	s, i := 0, 0
	for b := range lp.Blocks {
		s += storeCount(b)
		i += len(b.Instrs)
	}
	return s, i
}

// unrollOne replicates the whole loop body factor-1 times. Every edge onto
// the header from inside the loop is a back edge (the header dominates the
// whole body), so rewiring is uniform: stage s's back edges enter stage
// s+1's header replica, and the last stage closes the loop onto the
// original header.
func unrollOne(f *ir.Function, lp *analysis.Loop, factor int) {
	hdr := lp.Header
	// Deterministic block order for cloning.
	blocks := make([]*ir.Block, 0, len(lp.Blocks))
	for b := range lp.Blocks {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].Idx < blocks[j].Idx })

	// Clone all stages first, from the originals, so every clone's
	// targets still reference original blocks and can be remapped
	// uniformly afterwards.
	cursor := blocks[len(blocks)-1]
	stages := make([]map[*ir.Block]*ir.Block, factor)
	for s := 1; s < factor; s++ {
		m := make(map[*ir.Block]*ir.Block, len(blocks))
		for _, b := range blocks {
			nb := f.NewBlockAfter(cursor, fmt.Sprintf("%s.u%d", b.Label, s+1))
			nb.Instrs = append([]isa.Instr(nil), b.Instrs...)
			nb.TakenTarget = b.TakenTarget
			nb.FallTarget = b.FallTarget
			nb.CallTarget = b.CallTarget
			m[b] = nb
			cursor = nb
		}
		stages[s] = m
	}

	get := func(s int, orig *ir.Block) *ir.Block {
		if s == 0 {
			return orig
		}
		return stages[s][orig]
	}
	for s := 0; s < factor; s++ {
		nextHdr := hdr
		if s+1 < factor {
			nextHdr = stages[s+1][hdr]
		}
		remap := func(t *ir.Block) *ir.Block {
			switch {
			case t == nil || !lp.Blocks[t]:
				return t // exit edge: unchanged
			case t == hdr:
				return nextHdr // back edge: next stage
			default:
				return get(s, t) // intra-iteration edge: same stage
			}
		}
		for _, b := range blocks {
			cb := get(s, b)
			cb.TakenTarget = remap(cb.TakenTarget)
			cb.FallTarget = remap(cb.FallTarget)
		}
	}
}
