package compiler

import (
	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/isa"
)

// peephole performs the block-local cleanups an -O3 toolchain would have
// done long before region formation, so the region statistics are not
// polluted by dead instructions:
//
//   - dead pure definitions (ALU/mov results never read before the next
//     redefinition or block end with the register dead-out) are removed
//   - self-moves (mov rX, rX) are removed
//   - movi/ALU-immediate pairs feeding an address computation are left
//     alone — they are real work on this ISA
//
// Stores, loads (which may have architectural side effects through the
// memory system) and terminators are never touched. Runs before region
// formation; returns the number of instructions removed.
func peephole(p *ir.Program) int {
	lv := analysis.ComputeLiveness(p)
	removed := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			removed += peepholeBlock(b, lv.Out[b])
		}
	}
	return removed
}

// peepholeBlock removes dead pure definitions from one block given its
// live-out set, scanning backwards.
func peepholeBlock(b *ir.Block, liveOut analysis.RegSet) int {
	live := liveOut
	kept := make([]isa.Instr, 0, len(b.Instrs))
	// Walk backwards, collecting survivors in reverse.
	var uses []isa.Reg
	for i := len(b.Instrs) - 1; i >= 0; i-- {
		in := b.Instrs[i]
		pure := in.Op.IsALURR() || in.Op.IsALURI() ||
			in.Op == isa.OpMovI || in.Op == isa.OpMov
		if pure {
			d := isa.Reg(in.Defs())
			selfMove := in.Op == isa.OpMov && in.Src1 == d
			if selfMove || !live.Has(d) {
				continue // dead: drop it
			}
		}
		// Survives: update liveness across it.
		if in.Op == isa.OpCall {
			// Conservative inside a block-local pass: treat the call
			// as using everything (it is a terminator anyway, seen
			// first in the backward scan, so this only widens live).
			live = ^analysis.RegSet(0)
		} else {
			if d := in.Defs(); d >= 0 {
				live = live.Remove(isa.Reg(d))
			}
			uses = in.Uses(uses[:0])
			for _, u := range uses {
				live = live.Add(u)
			}
		}
		kept = append(kept, in)
	}
	removed := len(b.Instrs) - len(kept)
	if removed == 0 {
		return 0
	}
	// Reverse kept back into program order.
	for i, j := 0, len(kept)-1; i < j; i, j = i+1, j-1 {
		kept[i], kept[j] = kept[j], kept[i]
	}
	b.Instrs = kept
	return removed
}
