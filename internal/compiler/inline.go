package compiler

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/isa"
)

// inlineSmallFuncs implements the Section 5 optimization the paper leaves
// as future work: "small function inlining [70]" to enlarge regions, since
// callsite boundaries can never be merged away (Section 6.4). Inlining a
// leaf callee removes two region boundaries (callee entry and call
// continuation) per dynamic call.
//
// A callee is inlined when it is a leaf (no calls), below the instruction
// bound, and not the program entry. The callee's blocks are cloned into
// the caller; the call becomes a jump to the cloned entry and every cloned
// ret becomes a jump to the continuation. The link register is left
// untouched — the inlined body no longer needs it, and no program observes
// lr as data.
//
// Returns the number of callsites inlined.
func inlineSmallFuncs(p *ir.Program, maxInstrs int) int {
	n := 0
	for _, f := range p.Funcs {
		// Collect callsites first: inlining appends blocks.
		var sites []*ir.Block
		for _, b := range f.Blocks {
			if b.Terminator().Op == isa.OpCall && inlinable(b.CallTarget, maxInstrs, p) {
				sites = append(sites, b)
			}
		}
		for _, b := range sites {
			inlineCall(f, b)
			n++
		}
	}
	return n
}

func inlinable(callee *ir.Function, maxInstrs int, p *ir.Program) bool {
	if callee == p.Entry {
		return false
	}
	total := 0
	for _, b := range callee.Blocks {
		total += len(b.Instrs)
		if b.Terminator().Op == isa.OpCall {
			return false // not a leaf
		}
	}
	return total <= maxInstrs
}

// inlineCall splices a clone of b.CallTarget into b's function, replacing
// the call with a jump into the clone and each ret with a jump to the
// continuation.
func inlineCall(f *ir.Function, b *ir.Block) {
	callee := b.CallTarget
	cont := b.FallTarget

	clones := make(map[*ir.Block]*ir.Block, len(callee.Blocks))
	cursor := f.Blocks[len(f.Blocks)-1]
	for i, cb := range callee.Blocks {
		nb := f.NewBlockAfter(cursor, fmt.Sprintf("%s.inl%d.%s", callee.Name, b.Idx, cb.Label))
		_ = i
		nb.Instrs = append([]isa.Instr(nil), cb.Instrs...)
		nb.TakenTarget = cb.TakenTarget
		nb.FallTarget = cb.FallTarget
		nb.CallTarget = cb.CallTarget
		clones[cb] = nb
		cursor = nb
	}
	// Rewire clone-internal edges and convert rets.
	for _, cb := range callee.Blocks {
		nb := clones[cb]
		if t := nb.Instrs[len(nb.Instrs)-1]; t.Op == isa.OpRet {
			nb.Instrs[len(nb.Instrs)-1] = isa.Instr{Op: isa.OpJmp}
			nb.TakenTarget = cont
			continue
		}
		if nb.TakenTarget != nil {
			if c, ok := clones[nb.TakenTarget]; ok {
				nb.TakenTarget = c
			}
		}
		if nb.FallTarget != nil {
			if c, ok := clones[nb.FallTarget]; ok {
				nb.FallTarget = c
			}
		}
	}
	// Replace the call with a jump into the inlined entry.
	b.Instrs[len(b.Instrs)-1] = isa.Instr{Op: isa.OpJmp}
	b.TakenTarget = clones[callee.Entry()]
	b.FallTarget = nil
	b.CallTarget = nil
}
