// Package compiler implements the SweepCache compiler (Section 4.1): region
// formation guided by the persist-buffer size, live-out register
// checkpointing, loop unrolling, and the EH-model long-region split — plus
// the ReplayCache lowering (clwb after every store, fence at region ends)
// and a plain mode used by the JIT-checkpoint baselines.
//
// Region boundaries are materialized as instruction sequences at the start
// of every region-head block:
//
//	[ckpt.st lr]   only at function entries; persists the return address
//	save.pc        stores the next region's first PC to the recovery slot
//	region.end     architecture flushes dirty lines and switches buffers
//
// The two (or three) boundary stores execute before region.end and are
// therefore quarantined in the *previous* region's persist buffer, exactly
// like that region's ordinary stores. Dynamically this reproduces the
// paper's protocol: the PC saved at the end of region N points at region
// N+1's first real instruction, on whichever control-flow path was taken.
package compiler

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/isa"
)

// Mode selects the code transformation applied before linking.
type Mode int

const (
	// ModePlain performs no transformation; used by NVP, WT-VCache,
	// NVSRAM, NVSRAM-E and NvMR, which rely on JIT checkpointing.
	ModePlain Mode = iota
	// ModeSweep applies the full SweepCache pipeline.
	ModeSweep
	// ModeReplay applies the ReplayCache lowering: regions bounded at
	// callsites and loop headers with a fence at each boundary, and a
	// clwb after every store.
	ModeReplay
)

func (m Mode) String() string {
	switch m {
	case ModePlain:
		return "plain"
	case ModeSweep:
		return "sweep"
	case ModeReplay:
		return "replay"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Options configures a compilation.
type Options struct {
	Mode Mode

	// StoreThreshold is the persist-buffer size in entries; no region may
	// contain more stores than this along any path (Section 4.5).
	// Defaults to 64.
	StoreThreshold int

	// UnrollCap bounds the loop-unrolling factor (Section 4.1, Figure 4).
	// 1 disables unrolling. Defaults to 6.
	UnrollCap int

	// UnrollMaxBodyInstrs skips unrolling of loop bodies larger than
	// this. Defaults to 160.
	UnrollMaxBodyInstrs int

	// DisablePeephole skips the dead-code peephole cleanup that normally
	// runs before region formation in sweep and replay modes.
	DisablePeephole bool

	// InlineSmallFuncs enables the Section 5 future-work optimization:
	// leaf functions up to InlineMaxInstrs instructions are inlined at
	// their callsites, removing un-mergeable callsite boundaries.
	InlineSmallFuncs bool
	// InlineMaxInstrs bounds inlinable callee size. Defaults to 48.
	InlineMaxInstrs int

	// MaxRegionEnergy, when positive, enables the EH-model forward
	// progress check (Section 4.1): regions whose worst-case energy
	// estimate exceeds it are split. Units are arbitrary but must match
	// EnergyPerInstr/EnergyPerStore.
	MaxRegionEnergy float64
	// EnergyPerInstr and EnergyPerStore parameterize the worst-case
	// region energy estimate.
	EnergyPerInstr float64
	EnergyPerStore float64
}

// withDefaults fills zero fields with defaults.
func (o Options) withDefaults() Options {
	if o.StoreThreshold == 0 {
		o.StoreThreshold = 64
	}
	if o.UnrollCap == 0 {
		o.UnrollCap = 6
	}
	if o.UnrollMaxBodyInstrs == 0 {
		o.UnrollMaxBodyInstrs = 160
	}
	if o.InlineMaxInstrs == 0 {
		o.InlineMaxInstrs = 48
	}
	return o
}

// Stats summarizes the static outcome of a compilation.
type Stats struct {
	Mode          Mode
	Regions       int // region-head count (dynamic entry implied)
	CkptStores    int // checkpoint stores inserted
	FenceCount    int // fences inserted (replay mode)
	ClwbCount     int // clwbs inserted (replay mode)
	UnrolledLoops int
	InlinedCalls  int   // callsites inlined (Section 5 optimization)
	DeadRemoved   int   // dead instructions removed by the peephole pass
	SplitBoundary int   // boundaries added by store-threshold splitting
	EnergySplits  int   // boundaries added by the EH-model check
	StaticInstrs  int   // linked code size
	MaxPathStores []int // per region, worst-case store count incl. boundary stores
	RegionSizeMax []int // per region, worst-case instruction count
}

// Result is a compiled, linked program plus its static statistics.
type Result struct {
	Linked *ir.Linked
	Stats  Stats
}

// Compile transforms p in place according to opt and links it. The program
// must come fresh from its builder; compiling the same *ir.Program twice is
// an error in the caller (transformations are destructive).
func Compile(p *ir.Program, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	st := Stats{Mode: opt.Mode}

	switch opt.Mode {
	case ModePlain:
		// Only the O3-style cleanup; no persistence lowering.
		if !opt.DisablePeephole {
			st.DeadRemoved = peephole(p)
		}
	case ModeSweep:
		if !opt.DisablePeephole {
			st.DeadRemoved = peephole(p)
		}
		if opt.InlineSmallFuncs {
			st.InlinedCalls = inlineSmallFuncs(p, opt.InlineMaxInstrs)
		}
		if opt.UnrollCap > 1 {
			st.UnrolledLoops = unrollLoops(p, opt)
		}
		if err := formRegions(p, opt, &st, true); err != nil {
			return nil, err
		}
	case ModeReplay:
		if !opt.DisablePeephole {
			st.DeadRemoved = peephole(p)
		}
		if err := formRegions(p, opt, &st, false); err != nil {
			return nil, err
		}
		lowerReplay(p, &st)
	default:
		return nil, fmt.Errorf("compiler: unknown mode %v", opt.Mode)
	}

	l, err := ir.Link(p)
	if err != nil {
		return nil, err
	}
	st.StaticInstrs = len(l.Code)
	return &Result{Linked: l, Stats: st}, nil
}

// lowerReplay inserts a clwb after every store and a fence at the start of
// every region-head block (the region-formation pass has already marked
// heads and did not insert SweepCache boundary code in replay mode).
func lowerReplay(p *ir.Program, st *Stats) {
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			out := make([]isa.Instr, 0, len(b.Instrs)*2)
			if b.RegionHead {
				out = append(out, isa.Instr{Op: isa.OpFence})
				st.FenceCount++
			}
			for _, in := range b.Instrs {
				out = append(out, in)
				if in.Op == isa.OpSt || in.Op == isa.OpStB {
					out = append(out, isa.Instr{
						Op:   isa.OpClwb,
						Src1: in.Src1,
						Imm:  in.Imm,
					})
					st.ClwbCount++
				}
			}
			b.Instrs = out
		}
	}
}
