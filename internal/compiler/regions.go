package compiler

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/isa"
)

// region is a set of blocks of one function executed between two region
// boundaries. The subgraph induced by a region is acyclic because loop
// headers are always region heads.
type region struct {
	head   *ir.Block
	blocks []*ir.Block
	member map[*ir.Block]bool
}

func (r *region) contains(b *ir.Block) bool { return r.member[b] }

// formRegions implements Section 4.1. When sweep is true the full pipeline
// runs: the fixpoint of {checkpoint insertion, store-threshold splitting},
// the EH-model split, and boundary-code insertion. When sweep is false only
// the initial boundaries (function entries, call continuations, loop
// headers) are computed and marked, which is what ReplayCache needs.
func formRegions(p *ir.Program, opt Options, st *Stats, sweep bool) error {
	heads := initialHeads(p)

	if sweep {
		// Fixpoint over the circular dependence between checkpoint
		// stores and region boundaries: checkpoint stores count against
		// the store threshold, and moving a boundary changes the
		// live-out sets. Each iteration re-derives checkpoints from
		// scratch and splits any region whose worst-case path exceeds
		// the threshold; the head set only grows, so this terminates.
		// The -2 slack accounts for the save.pc and (at function
		// entries) the lr checkpoint charged to the ending region.
		eff := opt.StoreThreshold - 2
		if eff < 1 {
			eff = 1
		}
		for iter := 0; ; iter++ {
			if iter > 200 {
				// Each region needs room for its checkpoint stores
				// plus the boundary's save.pc/lr stores on top of at
				// least one program store; below that the
				// split/re-checkpoint cycle cannot converge. The
				// paper's smallest evaluated threshold is 32.
				return fmt.Errorf("compiler: store threshold %d too small for %q — regions cannot fit their checkpoint stores", opt.StoreThreshold, p.Name)
			}
			stripCkpts(p)
			lv := analysis.ComputeLiveness(p)
			regions := buildRegions(p, heads)
			st.CkptStores = insertCkpts(lv, regions, heads)
			if !splitOverThreshold(heads, regions, eff, st) {
				break
			}
		}
		if opt.MaxRegionEnergy > 0 {
			for {
				regions := buildRegions(p, heads)
				if !splitOverEnergy(heads, regions, opt, st) {
					break
				}
			}
		}
	}

	// Mark heads and insert boundary code. The program entry function's
	// entry block is an implicit region start: execution begins there
	// with the checkpoint array zeroed (matching the zeroed register
	// file) and the recovery PC slot holding the entry PC.
	final := buildRegions(p, heads)
	for _, r := range final {
		b := r.head
		if b == p.Entry.Entry() {
			continue
		}
		b.RegionHead = true
		if !sweep {
			continue
		}
		prefix := make([]isa.Instr, 0, 3)
		if b == b.Fn.Entry() {
			// Persist the return address as part of the calling
			// region, so recovery of any callee region finds lr's
			// slot current.
			prefix = append(prefix, isa.Instr{Op: isa.OpCkptSt, Src2: isa.LR})
		}
		prefix = append(prefix,
			isa.Instr{Op: isa.OpSavePC},
			isa.Instr{Op: isa.OpRegionEnd},
		)
		b.Instrs = append(prefix, b.Instrs...)
	}

	st.Regions = len(final)
	for _, r := range final {
		stores, instrs := maxPath(r)
		st.MaxPathStores = append(st.MaxPathStores, stores)
		st.RegionSizeMax = append(st.RegionSizeMax, instrs)
	}
	return nil
}

// initialHeads computes the paper's initial boundary set: every function
// entry, every call continuation, and every loop header. The paper's
// Section 4.1 footnote exempts loops without stores from the header
// boundary — the persist buffer cannot overflow there — but its EH-model
// forward-progress requirement (a region must be executable within one
// capacitor charge) re-imposes it: a store-free loop of unknown trip count
// inside a region makes that region's worst-case execution unbounded, so
// rollback recovery could livelock on a small capacitor. Bounding every
// loop keeps forward progress guaranteed for any capacitor size.
func initialHeads(p *ir.Program) map[*ir.Block]bool {
	heads := map[*ir.Block]bool{}
	for _, f := range p.Funcs {
		heads[f.Entry()] = true
		for _, b := range f.Blocks {
			if b.Terminator().Op == isa.OpCall {
				heads[b.FallTarget] = true
			}
		}
		for _, lp := range analysis.NaturalLoops(f) {
			heads[lp.Header] = true
		}
	}
	return heads
}

// buildRegions partitions each function's reachable blocks into regions: a
// region is every block reachable from its head without crossing another
// head. Regions never cross call or return edges because call
// continuations and function entries are always heads.
func buildRegions(p *ir.Program, heads map[*ir.Block]bool) []*region {
	var regions []*region
	var succs []*ir.Block
	for _, f := range p.Funcs {
		for _, b := range analysis.ReversePostorder(f) {
			if !heads[b] {
				continue
			}
			r := &region{head: b, member: map[*ir.Block]bool{}}
			stack := []*ir.Block{b}
			for len(stack) > 0 {
				n := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if r.member[n] {
					continue
				}
				r.member[n] = true
				r.blocks = append(r.blocks, n)
				succs = n.Succs(succs[:0])
				for _, s := range succs {
					if !heads[s] && !r.member[s] {
						stack = append(stack, s)
					}
				}
			}
			regions = append(regions, r)
		}
	}
	return regions
}

// storeCount counts the instructions of b that occupy a persist-buffer
// entry when the region ends.
func storeCount(b *ir.Block) int {
	n := 0
	for _, in := range b.Instrs {
		if in.Op.IsStore() {
			n++
		}
	}
	return n
}

// maxPath returns the worst-case (store count, instruction count) over all
// paths through the region, via longest-path DP. The region subgraph minus
// edges onto the region's own head (a loop's back edge, which dynamically
// ends the region) is acyclic because all loop headers are region heads.
func maxPath(r *region) (stores, instrs int) {
	memoS := map[*ir.Block]int{}
	memoI := map[*ir.Block]int{}
	var walk func(b *ir.Block) (int, int)
	var succs []*ir.Block
	walk = func(b *ir.Block) (int, int) {
		if s, ok := memoS[b]; ok {
			return s, memoI[b]
		}
		memoS[b] = storeCount(b)
		memoI[b] = len(b.Instrs)
		bestS, bestI := 0, 0
		succs = b.Succs(succs[:0])
		local := append([]*ir.Block(nil), succs...)
		for _, s := range local {
			if !r.contains(s) || s == r.head {
				continue
			}
			ss, si := walk(s)
			if ss > bestS {
				bestS = ss
			}
			if si > bestI {
				bestI = si
			}
		}
		memoS[b] = storeCount(b) + bestS
		memoI[b] = len(b.Instrs) + bestI
		return memoS[b], memoI[b]
	}
	return walk(r.head)
}

// heaviestPath returns the path from the region head maximizing cumulative
// store count.
func heaviestPath(r *region) []*ir.Block {
	memo := map[*ir.Block]int{}
	var weight func(b *ir.Block) int
	var succs []*ir.Block
	weight = func(b *ir.Block) int {
		if w, ok := memo[b]; ok {
			return w
		}
		memo[b] = storeCount(b)
		best := 0
		succs = b.Succs(succs[:0])
		local := append([]*ir.Block(nil), succs...)
		for _, s := range local {
			if r.contains(s) && s != r.head {
				if w := weight(s); w > best {
					best = w
				}
			}
		}
		memo[b] = storeCount(b) + best
		return memo[b]
	}
	weight(r.head)

	path := []*ir.Block{r.head}
	cur := r.head
	for {
		var next *ir.Block
		best := -1
		succs = cur.Succs(succs[:0])
		for _, s := range succs {
			// An edge back onto the region's own head ends the
			// region dynamically; never walk it.
			if r.contains(s) && s != r.head && memo[s] > best {
				best, next = memo[s], s
			}
		}
		if next == nil {
			return path
		}
		path = append(path, next)
		cur = next
	}
}

// splitOverThreshold splits every region whose worst-case store count
// exceeds eff, adding new heads. Reports whether any split happened.
func splitOverThreshold(heads map[*ir.Block]bool, regions []*region, eff int, st *Stats) bool {
	split := false
	for _, r := range regions {
		total, _ := maxPath(r)
		if total <= eff {
			continue
		}
		split = true
		st.SplitBoundary++
		path := heaviestPath(r)
		acc := 0
		placed := false
		for _, b := range path {
			n := storeCount(b)
			if acc+n > eff {
				if b != r.head {
					// Boundary between blocks.
					heads[b] = true
					placed = true
					break
				}
				// The head alone overflows: split it at the
				// instruction after the eff-th store.
				idx := splitIndexAfterStores(b, eff)
				nb := b.Fn.SplitAt(b, idx)
				heads[nb] = true
				placed = true
				break
			}
			acc += n
		}
		if !placed {
			// Defensive: should be unreachable since total > eff
			// guarantees the loop trips.
			panic("compiler: threshold split found no cut point")
		}
	}
	return split
}

// splitIndexAfterStores returns the instruction index just after the n-th
// store of b, clamped to a valid split point.
func splitIndexAfterStores(b *ir.Block, n int) int {
	seen := 0
	for i, in := range b.Instrs {
		if in.Op.IsStore() {
			seen++
			if seen == n {
				idx := i + 1
				if idx >= len(b.Instrs) {
					idx = len(b.Instrs) - 1
				}
				if idx < 1 {
					idx = 1
				}
				return idx
			}
		}
	}
	return len(b.Instrs) - 1
}

// splitOverEnergy applies the EH-model forward-progress check: a region
// whose worst-case energy estimate exceeds the budget is cut at the middle
// of its heaviest path so it can complete within one capacitor charge.
func splitOverEnergy(heads map[*ir.Block]bool, regions []*region, opt Options, st *Stats) bool {
	split := false
	for _, r := range regions {
		stores, instrs := maxPath(r)
		e := float64(instrs)*opt.EnergyPerInstr + float64(stores)*opt.EnergyPerStore
		if e <= opt.MaxRegionEnergy {
			continue
		}
		path := heaviestPath(r)
		if len(path) >= 2 {
			mid := path[len(path)/2]
			if mid != r.head && !heads[mid] {
				heads[mid] = true
				st.EnergySplits++
				split = true
				continue
			}
		}
		// Single-block region: split the block in half.
		b := path[0]
		if len(b.Instrs) >= 3 {
			nb := b.Fn.SplitAt(b, len(b.Instrs)/2)
			heads[nb] = true
			st.EnergySplits++
			split = true
		}
	}
	return split
}

// stripCkpts removes previously inserted checkpoint stores so the fixpoint
// can re-derive them from current liveness and boundaries.
func stripCkpts(p *ir.Program) {
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			kept := b.Instrs[:0]
			for _, in := range b.Instrs {
				if in.Op != isa.OpCkptSt {
					kept = append(kept, in)
				}
			}
			b.Instrs = kept
		}
	}
}

// insertCkpts inserts a checkpoint store after the last in-block definition
// of every register that is live-out of the enclosing region (Section 4.1:
// "right after the last update point"). A register defined in several
// blocks of one region is checkpointed in each — slightly more stores than
// a path-sensitive placement, but sound: on any dynamic path the final
// definition is followed by its checkpoint, so the register's slot is
// current at the region boundary. Returns the number inserted.
func insertCkpts(lv *analysis.Liveness, regions []*region, heads map[*ir.Block]bool) int {
	total := 0
	for _, r := range regions {
		liveOut := regionLiveOut(r, lv, heads)
		if liveOut == 0 {
			continue
		}
		for _, b := range r.blocks {
			total += ckptBlock(b, liveOut)
		}
	}
	return total
}

// regionLiveOut unions liveness over every edge that crosses a region
// boundary: edges leaving the region's block set, edges into callees and
// back to callers, and — crucially — edges onto any region head, which
// includes a loop's back edge onto the region's own head (dynamically that
// edge ends the region even though source and target belong to the same
// static region).
func regionLiveOut(r *region, lv *analysis.Liveness, heads map[*ir.Block]bool) analysis.RegSet {
	var out analysis.RegSet
	var succs []*ir.Block
	for _, b := range r.blocks {
		t := b.Terminator()
		switch {
		case t.Op == isa.OpCall:
			out |= lv.EntryIn[b.CallTarget]
			out |= lv.In[b.FallTarget].Remove(isa.LR)
		case t.Op == isa.OpRet:
			out |= lv.ExitLive[b.Fn]
		default:
			succs = b.Succs(succs[:0])
			for _, s := range succs {
				if !r.contains(s) || heads[s] {
					out |= lv.In[s]
				}
			}
		}
	}
	return out
}

// ckptBlock inserts checkpoint stores into b for registers in liveOut whose
// last in-block definition is a plain instruction (the link register
// defined by a call terminator is persisted by the callee-entry lr
// checkpoint instead). Returns the number inserted.
func ckptBlock(b *ir.Block, liveOut analysis.RegSet) int {
	lastDef := [isa.NumRegs]int{}
	for i := range lastDef {
		lastDef[i] = -1
	}
	for i, in := range b.Instrs {
		if in.Op == isa.OpCall {
			continue
		}
		if d := in.Defs(); d >= 0 && liveOut.Has(isa.Reg(d)) {
			lastDef[d] = i
		}
	}
	// Collect insertion points, then rebuild in one pass.
	insertAfter := map[int][]isa.Reg{}
	n := 0
	for rg, idx := range lastDef {
		if idx >= 0 {
			insertAfter[idx] = append(insertAfter[idx], isa.Reg(rg))
			n++
		}
	}
	if n == 0 {
		return 0
	}
	out := make([]isa.Instr, 0, len(b.Instrs)+n)
	for i, in := range b.Instrs {
		out = append(out, in)
		for _, rg := range insertAfter[i] {
			out = append(out, isa.Instr{Op: isa.OpCkptSt, Src2: rg})
		}
	}
	b.Instrs = out
	return n
}
