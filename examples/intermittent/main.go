// Intermittent: the paper's central claim, demonstrated live. Run the sha
// benchmark on SweepCache under increasingly hostile RF power traces —
// dozens of real power failures, each destroying the cache and register
// file — and verify after every run that the final memory image matches
// the outage-free golden run bit for bit.
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	w, err := workloads.ByName("sha")
	if err != nil {
		log.Fatal(err)
	}
	build := func() *ir.Program { return w.Build(1) }
	p := config.Default()

	golden, err := core.Run(build, arch.SweepEmptyBit, p, nil)
	if err != nil {
		log.Fatal(err)
	}
	want := golden.NVM.PeekWord(workloads.CheckAddr())
	fmt.Printf("golden (no outages): checksum %#x in %.3f ms\n\n",
		want, float64(golden.TimeNs)/1e6)

	fmt.Println("seed   outages  regions   rollbacks->(0,0)  redone->(1,0)  wall-clock  checksum")
	for seed := int64(1); seed <= 8; seed++ {
		res, err := core.Run(build, arch.SweepEmptyBit, p, trace.New(trace.RFOffice, seed))
		if err != nil {
			log.Fatal(err)
		}
		got := res.NVM.PeekWord(workloads.CheckAddr())
		status := "OK"
		if got != want {
			status = "CORRUPT"
		}
		fmt.Printf("%4d  %8d %8d  %17d  %13d  %8.1f ms  %#x %s\n",
			seed, res.Outages, res.Arch.RegionsExecuted,
			res.Outages-res.Arch.RedoneDrains, res.Arch.RedoneDrains,
			float64(res.TimeNs)/1e6, got, status)
		if got != want {
			log.Fatal("crash consistency violated")
		}
	}
	fmt.Println("\nevery power-failure pattern produced the golden result:")
	fmt.Println("the persist buffers kept NVM consistent across all outages")
}
