// Tradeoff: explore the Section 6.4 design space interactively — how
// capacitor size and cache size move the balance between SweepCache and
// the JIT-checkpoint designs on one workload, mirroring Figures 8 and 9 at
// single-benchmark granularity.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	bench := flag.String("bench", "adpcmenc", "workload")
	seed := flag.Int64("seed", 1, "trace seed")
	flag.Parse()

	w, err := workloads.ByName(*bench)
	if err != nil {
		log.Fatal(err)
	}
	build := func() *ir.Program { return w.Build(1) }
	kinds := []arch.Kind{arch.ReplayCache, arch.NVSRAM, arch.SweepEmptyBit}

	run := func(p config.Params) map[arch.Kind]float64 {
		out := map[arch.Kind]float64{}
		base, err := core.Run(build, arch.NVP, p, trace.New(trace.RFOffice, *seed))
		if err != nil {
			log.Fatal(err)
		}
		for _, k := range kinds {
			r, err := core.Run(build, k, p, trace.New(trace.RFOffice, *seed))
			if err != nil {
				log.Fatal(err)
			}
			out[k] = core.Speedup(base, r)
		}
		return out
	}

	fmt.Printf("%s under RFOffice — speedups over NVP\n\n", *bench)

	fmt.Println("capacitor sweep (4 kB cache):")
	fmt.Printf("%-8s %12s %10s %12s\n", "cap", "ReplayCache", "NVSRAM", "SweepCache")
	for _, nf := range []float64{100, 470, 1000, 10000} {
		p := config.Default()
		p.CapacitorF = nf * 1e-9
		s := run(p)
		fmt.Printf("%6.0fnF %12.2f %10.2f %12.2f\n",
			nf, s[arch.ReplayCache], s[arch.NVSRAM], s[arch.SweepEmptyBit])
	}

	fmt.Println("\ncache sweep (470 nF capacitor):")
	fmt.Printf("%-8s %12s %10s %12s\n", "cache", "ReplayCache", "NVSRAM", "SweepCache")
	for _, kb := range []int{1, 2, 4, 8, 16} {
		p := config.Default()
		p.CacheSize = kb << 10
		s := run(p)
		fmt.Printf("%6dkB %12.2f %10.2f %12.2f\n",
			kb, s[arch.ReplayCache], s[arch.NVSRAM], s[arch.SweepEmptyBit])
	}
}
