// Regioninspector: a window into the SweepCache compiler. Compile one
// benchmark and dump what region formation produced — boundary counts,
// checkpoint stores, unrolled loops, worst-case store counts per region —
// then run it and compare the static picture against the dynamic one
// (Figure 12's distributions).
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"repro/internal/arch"
	"repro/internal/compiler"
	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	bench := flag.String("bench", "adpcmenc", "workload to inspect")
	threshold := flag.Int("threshold", 64, "store threshold / persist buffer size")
	disasm := flag.Bool("disasm", false, "print the compiled assembly")
	flag.Parse()

	w, err := workloads.ByName(*bench)
	if err != nil {
		log.Fatal(err)
	}
	res, err := compiler.Compile(w.Build(1), compiler.Options{
		Mode:           compiler.ModeSweep,
		StoreThreshold: *threshold,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := res.Stats

	fmt.Printf("%s compiled for SweepCache (threshold %d)\n\n", *bench, *threshold)
	fmt.Printf("static instructions      %6d\n", st.StaticInstrs)
	fmt.Printf("regions                  %6d\n", st.Regions)
	fmt.Printf("checkpoint stores        %6d\n", st.CkptStores)
	fmt.Printf("loops unrolled           %6d\n", st.UnrolledLoops)
	fmt.Printf("threshold splits         %6d\n", st.SplitBoundary)

	worst := append([]int(nil), st.MaxPathStores...)
	sort.Ints(worst)
	fmt.Printf("worst-case stores/region  median %d, max %d (bound %d)\n",
		worst[len(worst)/2], worst[len(worst)-1], *threshold)

	if *disasm {
		fmt.Println("\n" + res.Linked.Disasm())
	}

	// Dynamic view: run it and show what actually executed.
	p := config.Default()
	p.StoreThreshold = *threshold
	scheme := arch.New(arch.SweepEmptyBit, p)
	run, err := sim.Run(res.Linked, scheme, sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndynamic regions executed %6d\n", run.Arch.RegionsExecuted)
	fmt.Printf("mean region size         %8.1f instructions\n", run.RegionSizes.Mean())
	fmt.Printf("mean stores per region   %8.1f\n", run.Arch.StoresPerRegion.Mean())
	fmt.Printf("region size p50/p90/p99  %d / %d / %d\n",
		run.RegionSizes.Quantile(0.5), run.RegionSizes.Quantile(0.9), run.RegionSizes.Quantile(0.99))
	fmt.Printf("stores     p50/p90/p99   %d / %d / %d\n",
		run.Arch.StoresPerRegion.Quantile(0.5), run.Arch.StoresPerRegion.Quantile(0.9),
		run.Arch.StoresPerRegion.Quantile(0.99))
	fmt.Printf("parallelism efficiency   %8.1f%%\n", 100*run.ParallelismEfficiency())
	fmt.Printf("WAW stalls               %8.3f ms\n", float64(run.Arch.WAWStallNs)/1e6)
}
