// Quickstart: build a tiny program with the IR builder, compile it for
// SweepCache and for the cache-free NVP baseline, run both outage-free,
// and print the speedup — the smallest end-to-end tour of the library.
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/ir"
)

// buildVecSum constructs 32 relaxation passes over a 128-element vector:
// out[i] += a[i] + (out[i] >> 1). The working set (3 kB) fits the 4 kB
// cache, so the volatile cache — and SweepCache's job of keeping it crash
// consistent — is doing real work.
func buildVecSum() *ir.Program {
	p := ir.NewProgram("vecsum")
	const n = 128
	const passes = 32
	a := p.Alloc(n * 8)
	out := p.Alloc(n * 8)
	for i := int64(0); i < n; i++ {
		p.InitWord(a+8*i, i*3+1)
	}

	f := p.NewFunc("main")
	en := f.Entry()
	ph := f.NewBlock("pass.head")
	pb := f.NewBlock("pass.body") // inner loop prologue
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	exit := f.NewBlock("inner.exit")
	done := f.NewBlock("done")

	en.MovI(6, 0)      // pass
	en.MovI(5, passes) // pass limit
	en.Jmp(ph)
	ph.Bge(6, 5, done, pb)
	pb.MovI(0, 0) // i
	pb.MovI(1, n) // limit
	pb.Jmp(head)
	head.Bge(0, 1, exit, body)
	body.MovI(2, a)
	body.ShlI(3, 0, 3)
	body.Add(2, 2, 3)
	body.Ld(4, 2, 0) // a[i]
	body.MovI(2, out)
	body.Add(2, 2, 3)
	body.Ld(5, 2, 0) // out[i]
	body.SarI(5, 5, 1)
	body.Add(4, 4, 5)
	body.St(2, 0, 4)
	body.AddI(0, 0, 1)
	body.Jmp(head)
	exit.MovI(5, passes) // restore pass limit (r5 was scratch)
	exit.AddI(6, 6, 1)
	exit.Jmp(ph)
	done.Halt()
	return p
}

func main() {
	p := config.Default()

	baseline, err := core.Run(buildVecSum, arch.NVP, p, nil)
	if err != nil {
		log.Fatal(err)
	}
	sweep, err := core.Run(buildVecSum, arch.SweepEmptyBit, p, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("NVP (cache-free):   %8.3f ms, %d instructions\n",
		float64(baseline.TimeNs)/1e6, baseline.Counts.Executed)
	fmt.Printf("SweepCache:         %8.3f ms, %d instructions "+
		"(%d regions, %.1f%% parallelism efficiency)\n",
		float64(sweep.TimeNs)/1e6, sweep.Counts.Executed,
		sweep.Arch.RegionsExecuted, 100*sweep.ParallelismEfficiency())
	fmt.Printf("speedup:            %8.2fx\n", core.Speedup(baseline, sweep))

	// Both machines must compute the same answer.
	outBase := int64(4096 + 128*8) // second allocation: the out vector
	for i := int64(0); i < 128; i++ {
		if baseline.NVM.PeekWord(outBase+8*i) != sweep.NVM.PeekWord(outBase+8*i) {
			log.Fatalf("out[%d] mismatch — memory hierarchy changed program semantics!", i)
		}
	}
	fmt.Println("results match: the volatile cache is functionally transparent")
}
